"""Merging per-shard search results into the global result order.

Every shard answers a query over its own records with *local* record ids.
The merge remaps local ids to global ids through the shard's
``shard_globals`` table and re-sorts the union under the library-wide
result order — decreasing score, ties by increasing record id — which is
exactly what the unsharded backends produce.  Because a shard's local-id
order coincides with its global-id order (ids are assigned in arrival
order on both levels), per-shard orderings are globally consistent and
the merged lists are *identical* to the unsharded ones, ties included.

For ``top_k`` the same argument makes the shard-wise merge exact: the
global ``k`` best records are each among their own shard's ``k`` best,
so concatenating per-shard top-``k`` lists and truncating the re-sorted
union to ``k`` loses nothing.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.api.results import SearchResult


def _collect(hits: Sequence[SearchResult]) -> tuple[np.ndarray, np.ndarray]:
    """Split a hit list into parallel (ids, scores) columns."""
    count = len(hits)
    ids = np.fromiter((hit.record_id for hit in hits), dtype=np.int64, count=count)
    scores = np.fromiter((hit.score for hit in hits), dtype=np.float64, count=count)
    return ids, scores


def _ordered_results(ids: np.ndarray, scores: np.ndarray) -> list[SearchResult]:
    """Materialise hits in the global result order (score desc, id asc)."""
    order = np.lexsort((ids, -scores))
    return list(
        map(
            SearchResult._make,
            zip(ids[order].tolist(), scores[order].tolist()),
        )
    )


def merge_query_hits(
    per_shard_hits: Sequence[Sequence[SearchResult]],
    shard_globals: Sequence[np.ndarray],
    limit: int | None = None,
) -> list[SearchResult]:
    """Merge one query's per-shard hit lists into the global order.

    ``per_shard_hits[s]`` holds shard ``s``'s hits under local ids;
    ``shard_globals[s]`` maps its local ids to global record ids.
    ``limit`` truncates the merged list (the ``top_k`` case).
    """
    id_chunks: list[np.ndarray] = []
    score_chunks: list[np.ndarray] = []
    for shard, hits in enumerate(per_shard_hits):
        if not hits:
            continue
        local_ids, scores = _collect(hits)
        id_chunks.append(shard_globals[shard][local_ids])
        score_chunks.append(scores)
    if not id_chunks:
        return []
    merged = _ordered_results(
        np.concatenate(id_chunks), np.concatenate(score_chunks)
    )
    return merged if limit is None else merged[:limit]


def merge_workload_hits(
    per_shard_workloads: Sequence[Sequence[Sequence[SearchResult]]],
    shard_globals: Sequence[np.ndarray],
    num_queries: int,
    limit: int | None = None,
) -> list[list[SearchResult]]:
    """Workload variant: ``per_shard_workloads[s][q]`` → merged ``[q]``."""
    return [
        merge_query_hits(
            [workload[query] for workload in per_shard_workloads],
            shard_globals,
            limit=limit,
        )
        for query in range(num_queries)
    ]
