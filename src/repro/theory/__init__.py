"""Analytical results of the paper, implemented as checkable formulas.

``taylor``
    Lemma 1: second-order Taylor approximations of the expectation and
    variance of a function of a random variable.
``variance``
    The estimator expectations and variances of Section III-B
    (Equations 18–21 for MinHash and LSH-E) and the average sketch sizes
    of Theorem 3 (Equations 28 and 31).
``comparisons``
    Executable versions of the paper's comparative claims: Theorem 1
    (equal allocation is optimal for KMV), Theorem 3 (G-KMV beats KMV for
    α1 below ≈3.4), Theorem 4 (splitting the element universe hurts), and
    Theorem 5 / the buffer cost model (GB-KMV beats LSH-E).
"""

from repro.theory.taylor import taylor_expectation, taylor_variance
from repro.theory.variance import (
    average_k_gkmv,
    average_k_kmv,
    frequency_second_moment,
    lshe_containment_expectation,
    lshe_containment_variance,
    minhash_containment_expectation,
    minhash_containment_variance,
    minhash_jaccard_variance,
)
from repro.theory.comparisons import (
    gkmv_beats_kmv,
    optimal_equal_allocation_total_k,
    split_universe_variance_penalty,
    theorem3_alpha_bound,
)

__all__ = [
    "taylor_expectation",
    "taylor_variance",
    "minhash_jaccard_variance",
    "minhash_containment_expectation",
    "minhash_containment_variance",
    "lshe_containment_expectation",
    "lshe_containment_variance",
    "average_k_kmv",
    "average_k_gkmv",
    "frequency_second_moment",
    "gkmv_beats_kmv",
    "theorem3_alpha_bound",
    "optimal_equal_allocation_total_k",
    "split_universe_variance_penalty",
]
