"""Executable versions of the paper's comparative theorems.

These functions do not prove anything; they evaluate both sides of each
claim for concrete inputs so that tests and ablation benchmarks can check
the claimed direction on the data regimes the paper assumes.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro._errors import ConfigurationError
from repro.core.estimators import intersection_variance
from repro.theory.variance import average_k_gkmv, average_k_kmv, frequency_second_moment


def optimal_equal_allocation_total_k(
    budget: int, query_k: int, allocations: Sequence[int]
) -> tuple[float, float]:
    """Theorem 1: compare a signature allocation against equal allocation.

    Returns ``(total_k_allocation, total_k_equal)`` where the total is
    ``Σ min(k_q, k_i)`` — the quantity Theorem 1 maximises.  Equal
    allocation uses ``k_i = ⌊b / m⌋`` and the query gets the same size.
    """
    if budget < 1:
        raise ConfigurationError("budget must be >= 1")
    allocations = list(allocations)
    if not allocations or any(k <= 0 for k in allocations):
        raise ConfigurationError("allocations must be positive")
    if sum(allocations) > budget:
        raise ConfigurationError("allocations exceed the budget")
    total_given = float(sum(min(query_k, k) for k in allocations))
    equal_k = budget // len(allocations)
    total_equal = float(sum(min(equal_k, equal_k) for _ in allocations))
    return total_given, total_equal


def theorem3_alpha_bound(budget: float, num_records: int) -> float:
    """The α1 bound of Theorem 3: ``(1 + m/b) + sqrt((1 + m/b) m/b)``.

    For the common setting ``m/b <= 1`` this evaluates to at most ≈ 3.41,
    the "3.4" the paper quotes.
    """
    if budget <= 0 or num_records < 1:
        raise ConfigurationError("budget must be positive and num_records >= 1")
    ratio = num_records / budget
    return (1.0 + ratio) + math.sqrt((1.0 + ratio) * ratio)


def gkmv_beats_kmv(
    budget: float, num_records: int, frequencies: Sequence[int]
) -> tuple[float, float]:
    """Theorem 3: compare average sketch sizes ``k̄_GKMV`` vs ``k̄_KMV``.

    Larger ``k`` means lower estimator variance (Lemma 2), so G-KMV is
    better whenever the first component exceeds the second.
    """
    fn2 = frequency_second_moment(frequencies)
    return (
        average_k_gkmv(budget, num_records, fn2),
        average_k_kmv(budget, num_records),
    )


def split_universe_variance_penalty(
    intersection_sizes: tuple[float, float],
    union_sizes: tuple[float, float],
    sketch_sizes: tuple[int, int],
) -> tuple[float, float]:
    """Theorem 4: variance of a split-universe estimator vs the joint one.

    Given the per-group intersection / union sizes and per-group sketch
    sizes of a two-way split of the element universe, returns
    ``(variance_split, variance_joint)`` where the joint estimator uses
    the combined sketch size ``k = k1 + k2`` on the combined sizes.
    Theorem 4 says the first is at least the second.
    """
    d_cap_1, d_cap_2 = intersection_sizes
    d_cup_1, d_cup_2 = union_sizes
    k_1, k_2 = sketch_sizes
    if min(k_1, k_2) < 3:
        raise ConfigurationError("sketch sizes must be >= 3 for the variance formula")
    variance_split = intersection_variance(d_cap_1, d_cup_1, k_1) + intersection_variance(
        d_cap_2, d_cup_2, k_2
    )
    variance_joint = intersection_variance(
        d_cap_1 + d_cap_2, d_cup_1 + d_cup_2, k_1 + k_2
    )
    return float(variance_split), float(variance_joint)


def empirical_estimator_variance(estimates: Sequence[float]) -> float:
    """Sample variance of repeated estimates (used to verify formulas empirically)."""
    arr = np.asarray(estimates, dtype=np.float64)
    if arr.size < 2:
        raise ConfigurationError("need at least two estimates")
    return float(arr.var(ddof=1))
