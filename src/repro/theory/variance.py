"""Estimator moments from Section III-B and Theorem 3 of the paper.

MinHash / LSH-E containment estimators
---------------------------------------
With ``s = J(Q, X)``, ``t = C(Q, X)``, query size ``q``, record size ``x``,
partition upper bound ``u`` and ``k`` hash functions:

* Equation 18:  ``E[t̂]  ≈ t (1 − (1 − s) / (k (1 + s)²))``
* Equation 19:  ``Var[t̂] ≈ D∩² (1 − s) [k (1 + s)² − s (1 − s)] / (q² k² s (1 + s)⁴)``
* Equation 20:  ``E[t̂'] ≈ (u + q)/(x + q) · E[t̂]``
* Equation 21:  ``Var[t̂'] ≈ ((u + q)/(x + q))² · Var[t̂]``

Average sketch sizes (Theorem 3)
--------------------------------
* Equation 28:  ``k̄_KMV  = ⌊b / m⌋``
* Equation 31:  ``k̄_GKMV = 2b/m − (b/m)² · fn₂ · (m²/b²·…)`` — implemented
  directly as ``2b/m − b²/m² · fn₂`` with ``fn₂ = Σ f_i² / N²``.
"""

from __future__ import annotations

import numpy as np

from repro._errors import ConfigurationError


def _validate_similarity(value: float, name: str) -> None:
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value}")


def minhash_jaccard_variance(jaccard: float, num_hashes: int) -> float:
    """Equation 7: ``Var[ŝ] = s (1 − s) / k`` for the MinHash Jaccard estimator."""
    _validate_similarity(jaccard, "jaccard")
    if num_hashes < 1:
        raise ConfigurationError("num_hashes must be >= 1")
    return jaccard * (1.0 - jaccard) / num_hashes


def minhash_containment_expectation(
    containment: float, jaccard: float, num_hashes: int
) -> float:
    """Equation 18: approximate expectation of the MinHash containment estimator."""
    _validate_similarity(containment, "containment")
    _validate_similarity(jaccard, "jaccard")
    if num_hashes < 1:
        raise ConfigurationError("num_hashes must be >= 1")
    bias_factor = 1.0 - (1.0 - jaccard) / (num_hashes * (1.0 + jaccard) ** 2)
    return containment * bias_factor


def minhash_containment_variance(
    intersection_size: float, jaccard: float, query_size: int, num_hashes: int
) -> float:
    """Equation 19: approximate variance of the MinHash containment estimator."""
    _validate_similarity(jaccard, "jaccard")
    if query_size <= 0:
        raise ConfigurationError("query_size must be positive")
    if num_hashes < 1:
        raise ConfigurationError("num_hashes must be >= 1")
    if intersection_size < 0:
        raise ConfigurationError("intersection_size must be non-negative")
    if jaccard == 0.0:
        return 0.0
    s = jaccard
    numerator = (
        intersection_size**2
        * (1.0 - s)
        * (num_hashes * (1.0 + s) ** 2 - s * (1.0 - s))
    )
    denominator = query_size**2 * num_hashes**2 * s * (1.0 + s) ** 4
    return numerator / denominator


def lshe_containment_expectation(
    containment: float,
    jaccard: float,
    num_hashes: int,
    record_size: float,
    upper_bound: float,
    query_size: float,
) -> float:
    """Equation 20: expectation of the LSH-E estimator with size upper bound ``u``."""
    if record_size <= 0 or upper_bound <= 0 or query_size <= 0:
        raise ConfigurationError("sizes must be positive")
    if upper_bound < record_size:
        raise ConfigurationError("upper_bound must be at least the record size")
    base = minhash_containment_expectation(containment, jaccard, num_hashes)
    return (upper_bound + query_size) / (record_size + query_size) * base


def lshe_containment_variance(
    intersection_size: float,
    jaccard: float,
    query_size: int,
    num_hashes: int,
    record_size: float,
    upper_bound: float,
) -> float:
    """Equation 21: variance of the LSH-E estimator with size upper bound ``u``."""
    if record_size <= 0 or upper_bound <= 0:
        raise ConfigurationError("sizes must be positive")
    if upper_bound < record_size:
        raise ConfigurationError("upper_bound must be at least the record size")
    base = minhash_containment_variance(intersection_size, jaccard, query_size, num_hashes)
    factor = (upper_bound + query_size) / (record_size + query_size)
    return factor**2 * base


def frequency_second_moment(frequencies) -> float:
    """``fn₂ = Σ f_i² / N²`` — the normalised second moment of element frequencies."""
    arr = np.asarray(frequencies, dtype=np.float64)
    if arr.size == 0:
        raise ConfigurationError("frequencies must not be empty")
    if np.any(arr <= 0):
        raise ConfigurationError("frequencies must be positive")
    total = arr.sum()
    return float(np.square(arr).sum() / total**2)


def average_k_kmv(budget: float, num_records: int) -> float:
    """Equation 28: the average sketch size of plain KMV is ``⌊b / m⌋``."""
    if budget <= 0:
        raise ConfigurationError("budget must be positive")
    if num_records < 1:
        raise ConfigurationError("num_records must be >= 1")
    return float(int(budget // num_records))


def average_k_gkmv(budget: float, num_records: int, fn2: float) -> float:
    """Equation 31: the average pairwise sketch size of G-KMV.

    ``k̄_GKMV = 2 b / m − (b / m)² fn₂ · m²/m²`` simplifies to
    ``2b/m − b²/m² · fn₂`` with ``fn₂ = Σ f_i²/N²``.
    """
    if budget <= 0:
        raise ConfigurationError("budget must be positive")
    if num_records < 1:
        raise ConfigurationError("num_records must be >= 1")
    if fn2 < 0:
        raise ConfigurationError("fn2 must be non-negative")
    per_record = budget / num_records
    return 2.0 * per_record - per_record**2 * fn2 * num_records**2 / num_records**2
