"""Lemma 1: Taylor approximations of moments of a function of a random variable.

For a random variable ``X`` with known mean and variance and a twice
differentiable function ``f``:

    E[f(X)]   ≈ f(E[X]) + f''(E[X]) / 2 · Var[X]
    Var[f(X)] ≈ (f'(E[X]))² · Var[X] − (f''(E[X]))² / 4 · Var[X]²

These are the expansions the paper uses to derive the expectation and
variance of the MinHash- and LSH-E-based containment estimators
(Equations 18–21).
"""

from __future__ import annotations

from typing import Callable

from repro._errors import ConfigurationError


def taylor_expectation(
    f: Callable[[float], float],
    second_derivative: Callable[[float], float],
    mean: float,
    variance: float,
) -> float:
    """Second-order Taylor approximation of ``E[f(X)]`` (Equation 16)."""
    if variance < 0:
        raise ConfigurationError("variance must be non-negative")
    return f(mean) + 0.5 * second_derivative(mean) * variance


def taylor_variance(
    first_derivative: Callable[[float], float],
    second_derivative: Callable[[float], float],
    mean: float,
    variance: float,
) -> float:
    """Second-order Taylor approximation of ``Var[f(X)]`` (Equation 17)."""
    if variance < 0:
        raise ConfigurationError("variance must be non-negative")
    value = (
        first_derivative(mean) ** 2 * variance
        - (second_derivative(mean) ** 2) / 4.0 * variance**2
    )
    return max(value, 0.0)
