"""The unified similarity-search index protocol.

:class:`SimilarityIndex` is the one abstract interface every search
backend in the library implements — the GB-KMV index and the KMV/G-KMV
baselines natively, LSH Ensemble / asymmetric MinHash / the exact
searchers through the adapters in :mod:`repro.api.backends`.  The full
surface is available on every backend: where no specialised kernel
exists the base class supplies generic fallbacks (``search_many`` and
``insert_many`` loop over their singular forms, ``top_k`` ranks a
threshold-0 search), and where an operation is genuinely unsupported it
raises :class:`~repro._errors.CapabilityError` instead of an
``AttributeError``.

What a backend *really* supports is declared, not discovered: the
class-level :class:`Capabilities` descriptor says whether the backend is
dynamic (insert/delete/update), natively batched, persistent
(save/load), exact, and whether its scores are meaningful (top-k).
Harness code branches on capabilities instead of per-backend
special-casing or ``hasattr`` probing.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import ClassVar, Iterable, Sequence

from repro._errors import CapabilityError, ConfigurationError
from repro.api.config import IndexConfig
from repro.api.results import SearchResult


@dataclass(frozen=True)
class Capabilities:
    """What a :class:`SimilarityIndex` backend actually supports.

    Attributes
    ----------
    dynamic:
        ``insert`` / ``insert_many`` / ``delete`` / ``update`` work under
        stable record ids.
    batched:
        ``search_many`` runs a native fused multi-query engine.  Every
        backend *answers* ``search_many`` (the base class loops
        ``search`` otherwise); this flag says whether doing so is faster
        than the loop.
    persistent:
        ``save`` / ``load`` round-trip the index through a
        self-describing snapshot that :func:`repro.api.open_index`
        restores.
    exact:
        Results are exact containment similarities, not estimates.
    scored:
        Hit scores are meaningful estimates (ordering and ``top_k`` /
        ``top_k_many`` are supported).  False for candidate-set methods
        like raw LSH Ensemble whose scores are placeholders.
    """

    dynamic: bool = False
    batched: bool = False
    persistent: bool = False
    exact: bool = False
    scored: bool = True


@dataclass(frozen=True)
class BackendStatistics:
    """Generic summary a backend reports when it has no richer one.

    Backends with native statistics (the GB-KMV index's
    :class:`~repro.core.index.IndexStatistics`) override
    :meth:`SimilarityIndex.statistics` and return theirs; every
    statistics object exposes at least ``num_records``.
    """

    backend: str
    num_records: int
    space_in_values: float
    space_fraction: float


class SimilarityIndex(ABC):
    """Abstract base class of every containment-similarity search backend.

    Concrete backends define three class attributes —
    :attr:`backend_id` (the registry key), :attr:`config_type` (the
    :class:`~repro.api.config.IndexConfig` subclass their
    :meth:`from_records` consumes) and :attr:`capabilities` — and
    implement :meth:`from_records`, :meth:`search` and
    :attr:`num_records`.  Everything else has a capability-aware default.
    """

    #: Registry key of the backend (e.g. ``"gbkmv"``).
    backend_id: ClassVar[str] = ""
    #: The :class:`IndexConfig` subclass :meth:`from_records` accepts.
    config_type: ClassVar[type[IndexConfig]] = IndexConfig
    #: Declared capabilities; defaults to a static, unscored minimum.
    capabilities: ClassVar[Capabilities] = Capabilities()

    # ------------------------------------------------------------------ build
    @classmethod
    def resolve_config(cls, config: IndexConfig | None) -> IndexConfig:
        """Default or validate a build config against :attr:`config_type`."""
        if config is None:
            return cls.config_type()
        if not isinstance(config, cls.config_type):
            raise ConfigurationError(
                f"backend {cls.backend_id!r} expects a "
                f"{cls.config_type.__name__}, got {type(config).__name__}"
            )
        return config

    @classmethod
    @abstractmethod
    def from_records(
        cls,
        records: Sequence[Iterable[object]],
        config: IndexConfig | None = None,
    ) -> "SimilarityIndex":
        """Build the index over a dataset under a typed config.

        ``config=None`` builds under the backend's defaults; a config of
        the wrong type raises
        :class:`~repro._errors.ConfigurationError`.
        """

    # ---------------------------------------------------------------- search
    @abstractmethod
    def search(
        self,
        query: Iterable[object],
        threshold: float,
        query_size: int | None = None,
    ) -> list[SearchResult]:
        """Return records with (estimated) containment ``>= threshold``."""

    def search_many(
        self,
        queries: Sequence[Iterable[object]],
        threshold: float,
        query_sizes: Sequence[int] | None = None,
    ) -> list[list[SearchResult]]:
        """Answer a whole workload; identical to looping :meth:`search`.

        Backends with a fused engine (``capabilities.batched``) override
        this; the default is the per-query loop, so the uniform surface
        is complete on every backend.
        """
        if query_sizes is not None and len(query_sizes) != len(queries):
            raise ConfigurationError("query_sizes must be parallel to queries")
        return [
            self.search(
                query,
                threshold,
                query_size=None if query_sizes is None else int(query_sizes[i]),
            )
            for i, query in enumerate(queries)
        ]

    def top_k(
        self, query: Iterable[object], k: int, query_size: int | None = None
    ) -> list[SearchResult]:
        """The ``k`` best-scoring records for one query.

        The default ranks a threshold-0 search and truncates; it may
        return fewer than ``k`` hits when the backend's threshold-0
        search does not enumerate every record.  Unscored backends raise
        :class:`~repro._errors.CapabilityError`.
        """
        if not self.capabilities.scored:
            raise self._unsupported("top_k", "does not produce meaningful scores")
        if k <= 0:
            raise ConfigurationError("k must be positive")
        hits = self.search(query, 0.0, query_size=query_size)
        # search() only promises threshold filtering, not ordering — rank
        # here so the truncation keeps the k best of any backend.
        hits.sort(key=lambda hit: (-hit.score, hit.record_id))
        return hits[:k]

    def top_k_many(
        self,
        queries: Sequence[Iterable[object]],
        k: int,
        query_sizes: Sequence[int] | None = None,
    ) -> list[list[SearchResult]]:
        """Workload variant of :meth:`top_k` (default: per-query loop)."""
        if query_sizes is not None and len(query_sizes) != len(queries):
            raise ConfigurationError("query_sizes must be parallel to queries")
        return [
            self.top_k(
                query,
                k,
                query_size=None if query_sizes is None else int(query_sizes[i]),
            )
            for i, query in enumerate(queries)
        ]

    # --------------------------------------------------------------- updates
    def insert(self, record: Iterable[object]) -> int:
        """Insert a record, returning its stable record id."""
        raise self._unsupported("insert", "is not dynamic")

    def insert_many(self, records: Sequence[Iterable[object]]) -> list[int]:
        """Insert a batch of records, returning their ids in batch order.

        Dynamic backends without a bulk-ingest kernel inherit this loop;
        static backends raise :class:`~repro._errors.CapabilityError`.
        """
        if not self.capabilities.dynamic:
            raise self._unsupported("insert_many", "is not dynamic")
        return [self.insert(record) for record in records]

    def delete(self, record_id: int) -> None:
        """Remove a record; later searches must not return it."""
        raise self._unsupported("delete", "is not dynamic")

    def update(self, record_id: int, record: Iterable[object]) -> int:
        """Replace a record's content in place, keeping its record id."""
        raise self._unsupported("update", "is not dynamic")

    # ------------------------------------------------------------ persistence
    def save(self, path) -> None:
        """Snapshot the index to a self-describing npz file."""
        raise self._unsupported("save", "is not persistent")

    @classmethod
    def load(cls, path) -> "SimilarityIndex":
        """Restore an index saved with :meth:`save`."""
        raise CapabilityError(
            f"backend {cls.backend_id or cls.__name__!r} is not persistent; "
            "load is unsupported"
        )

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Release resources the index holds beyond plain memory.

        The default is a no-op: most backends are pure in-memory array
        structures with nothing to shut down.  Backends owning executors
        or open files (the sharded backend's fan-out pool) override this
        to release them deterministically instead of at GC time.
        ``close`` is idempotent, and a closed index remains usable for
        in-memory operations — it only gives up its auxiliary resources
        (a later call may lazily recreate them).
        """

    def __enter__(self) -> "SimilarityIndex":
        """Every index is a context manager; exit calls :meth:`close`."""
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # ------------------------------------------------------------ introspection
    @property
    def next_record_id(self) -> int | None:
        """The id the next :meth:`insert` will assign, or ``None`` if unknown.

        Every dynamic backend in the library assigns record ids
        sequentially and never reuses them (the invariant the sharded
        router and the dynamic-stream harness already rely on), so the
        next id is a well-defined part of the index state.  Exposing it
        lets single-writer layers — the serving write buffer — assign
        ids to records *before* the coalesced flush reaches the index.
        The default is ``None`` (unknown); backends without sequential
        assignment must leave it that way.
        """
        return None

    @property
    @abstractmethod
    def num_records(self) -> int:
        """Number of live records indexed."""

    def __len__(self) -> int:
        return self.num_records

    def space_in_values(self) -> float:
        """Sketch space used, in signature-value units (0 when untracked)."""
        return 0.0

    def space_fraction(self) -> float:
        """Space used as a fraction of the dataset size (0 when untracked)."""
        return 0.0

    def statistics(self) -> object:
        """Summary of the built index.

        The default is a generic :class:`BackendStatistics`; backends
        with richer native statistics return those instead.  Every
        return value exposes at least ``num_records``.
        """
        return BackendStatistics(
            backend=self.backend_id,
            num_records=self.num_records,
            space_in_values=self.space_in_values(),
            space_fraction=self.space_fraction(),
        )

    # ------------------------------------------------------------------ misc
    def _unsupported(self, operation: str, why: str) -> CapabilityError:
        """A uniform :class:`CapabilityError` for a declared-unsupported op."""
        return CapabilityError(
            f"backend {self.backend_id or type(self).__name__!r} {why}; "
            f"{operation} is unsupported (see its capabilities: "
            f"{self.capabilities})"
        )
