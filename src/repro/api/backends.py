"""Built-in backend registrations and adapter classes.

The GB-KMV index and the KMV/G-KMV baselines implement
:class:`~repro.api.interface.SimilarityIndex` natively; this module
registers them and supplies the adapters that bring the remaining
searchers — LSH Ensemble, asymmetric MinHash and the exact methods —
onto the same surface.  The adapters add nothing algorithmic: they
delegate to the wrapped index and inherit the generic loop fallbacks
(``search_many``, ``top_k``) and capability errors from the base class.

Imported lazily by :mod:`repro.api.registry` on first registry use, so
the :mod:`repro.api` package itself stays importable from inside the
core modules it describes.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.api.config import (
    AsymmetricMinHashConfig,
    ExactSearchConfig,
    LSHEnsembleConfig,
)
from repro.api.interface import Capabilities, SimilarityIndex
from repro.api.registry import register_backend
from repro.api.results import SearchResult
from repro.baselines.asymmetric_minhash import AMH_BACKEND_ID, AsymmetricMinHashIndex
from repro.baselines.kmv_search import GKMVSearchIndex, KMVSearchIndex
from repro.baselines.lsh_ensemble import LSHE_BACKEND_ID, LSHEnsembleIndex
from repro.core.index import GBKMVIndex
from repro.exact.brute_force import BruteForceSearcher
from repro.exact.frequent_set import FrequentSetSearcher
from repro.exact.ppjoin import PPJoinSearcher
from repro.sharding.backend import ShardedIndex


class _AdapterBackend(SimilarityIndex):
    """Delegation glue shared by every wrapped (non-native) backend."""

    def __init__(self, inner) -> None:
        self._inner = inner

    @property
    def inner(self):
        """The wrapped historical index, for callers needing its full API."""
        return self._inner

    @property
    def num_records(self) -> int:
        return int(self._inner.num_records)

    def search(
        self,
        query: Iterable[object],
        threshold: float,
        query_size: int | None = None,
    ) -> list[SearchResult]:
        return self._inner.search(query, threshold, query_size=query_size)

    def space_in_values(self) -> float:
        return float(getattr(self._inner, "space_in_values", lambda: 0.0)())

    def space_fraction(self) -> float:
        return float(getattr(self._inner, "space_fraction", lambda: 0.0)())


class LSHEnsembleBackend(_AdapterBackend):
    """LSH Ensemble on the uniform surface.

    Static and persistent.  The class-level ``scored`` capability is
    false because the original LSH-E returns unscored candidate sets;
    an instance built with ``LSHEnsembleConfig(verify=True)`` filters
    candidates through the Equation-15 estimator, produces meaningful
    scores, and reports ``scored=True`` — the verification mode is part
    of the wrapped index and survives save/load.
    """

    backend_id = LSHE_BACKEND_ID
    config_type = LSHEnsembleConfig
    capabilities = Capabilities(
        dynamic=False, batched=False, persistent=True, exact=False, scored=False
    )

    def __init__(self, inner: LSHEnsembleIndex) -> None:
        super().__init__(inner)
        if inner.verify_default:
            # Instance attribute shadows the ClassVar: verified ensembles
            # score their hits, so top-k is supported on them.
            self.capabilities = Capabilities(
                dynamic=False,
                batched=False,
                persistent=True,
                exact=False,
                scored=True,
            )

    @classmethod
    def from_records(
        cls,
        records: Sequence[Iterable[object]],
        config: LSHEnsembleConfig | None = None,
    ) -> "LSHEnsembleBackend":
        config = cls.resolve_config(config)
        return cls(
            LSHEnsembleIndex.build(
                records,
                num_perm=config.num_perm,
                num_partitions=config.num_partitions,
                seed=config.seed,
                false_positive_weight=config.false_positive_weight,
                false_negative_weight=config.false_negative_weight,
                verify=config.verify,
            )
        )

    def save(self, path) -> None:
        self._inner.save(path)

    @classmethod
    def load(cls, path) -> "LSHEnsembleBackend":
        return cls(LSHEnsembleIndex.load(path))


class AsymmetricMinHashBackend(_AdapterBackend):
    """Asymmetric minwise hashing on the uniform surface.

    Static and persistent; unscored (LSH candidate sets with placeholder
    scores).
    """

    backend_id = AMH_BACKEND_ID
    config_type = AsymmetricMinHashConfig
    capabilities = Capabilities(
        dynamic=False, batched=False, persistent=True, exact=False, scored=False
    )

    @classmethod
    def from_records(
        cls,
        records: Sequence[Iterable[object]],
        config: AsymmetricMinHashConfig | None = None,
    ) -> "AsymmetricMinHashBackend":
        config = cls.resolve_config(config)
        return cls(
            AsymmetricMinHashIndex.build(
                records, num_perm=config.num_perm, seed=config.seed
            )
        )

    def save(self, path) -> None:
        self._inner.save(path)

    @classmethod
    def load(cls, path) -> "AsymmetricMinHashBackend":
        return cls(AsymmetricMinHashIndex.load(path))


class _ExactBackend(_AdapterBackend):
    """Shared shape of the exact searchers: static, in-memory, exact."""

    #: The wrapped searcher class; set by each concrete adapter.
    searcher_type: type = object

    config_type = ExactSearchConfig
    capabilities = Capabilities(
        dynamic=False, batched=False, persistent=False, exact=True, scored=True
    )

    @classmethod
    def from_records(
        cls,
        records: Sequence[Iterable[object]],
        config: ExactSearchConfig | None = None,
    ) -> "_ExactBackend":
        cls.resolve_config(config)
        return cls(cls.searcher_type(records))


class BruteForceBackend(_ExactBackend):
    """Exhaustive-scan exact containment search on the uniform surface."""

    backend_id = "brute-force"
    searcher_type = BruteForceSearcher


class FrequentSetBackend(_ExactBackend):
    """Inverted-index (ScanCount) exact search on the uniform surface."""

    backend_id = "frequent-set"
    searcher_type = FrequentSetSearcher


class PPJoinBackend(_ExactBackend):
    """Prefix-filter (PPjoin*-style) exact search on the uniform surface."""

    backend_id = "ppjoin"
    searcher_type = PPJoinSearcher


for _backend in (
    GBKMVIndex,
    KMVSearchIndex,
    GKMVSearchIndex,
    LSHEnsembleBackend,
    AsymmetricMinHashBackend,
    BruteForceBackend,
    FrequentSetBackend,
    PPJoinBackend,
    ShardedIndex,
):
    register_backend(_backend)
