"""The public entry point of the library: one protocol, many backends.

Every search method in the reproduction — the paper's GB-KMV index, the
KMV/G-KMV baselines, LSH Ensemble, asymmetric MinHash and the exact
searchers — is served through one capability-aware interface::

    from repro.api import GBKMVConfig, available_backends, create_index, open_index

    index = create_index("gbkmv", records, GBKMVConfig(space_fraction=0.10))
    hits = index.search(query, threshold=0.5)
    workload_hits = index.search_many(queries, threshold=0.5)

    if index.capabilities.dynamic:
        index.insert_many(new_records)
    if index.capabilities.persistent:
        index.save("index.npz")
        restored = open_index("index.npz")   # backend id read from the snapshot

    available_backends()
    # ('asymmetric-minhash', 'brute-force', 'frequent-set', 'gbkmv',
    #  'gkmv', 'kmv', 'lsh-ensemble', 'ppjoin', 'sharded')

The pieces:

:class:`SimilarityIndex` / :class:`Capabilities`
    The abstract index protocol and the per-backend capability
    descriptor (dynamic? batched? persistent? exact? scored?).
:class:`IndexConfig` and its subclasses
    Typed build configurations replacing the historical keyword
    constructors.
:func:`create_index` / :func:`available_backends` / :func:`register_backend`
    The string-keyed backend registry; third-party backends register a
    ``SimilarityIndex`` subclass and become first-class citizens.
:func:`open_index`
    Restores any saved index from its self-describing snapshot.

The historical entry points (``repro.GBKMVIndex.build(...)`` and
friends) keep working — the native classes *are* the registered
backends — but new code should come in through this module.  A curated
set of dataset and evaluation helpers is re-exported so typical
programs need no other import.
"""

from repro._errors import (
    CapabilityError,
    ConfigurationError,
    SnapshotFormatError,
    UnknownBackendError,
)
from repro.api.config import (
    AsymmetricMinHashConfig,
    ExactSearchConfig,
    GBKMVConfig,
    GKMVConfig,
    IndexConfig,
    KMVConfig,
    LSHEnsembleConfig,
    ServingConfig,
    ShardedConfig,
)
from repro.api.interface import BackendStatistics, Capabilities, SimilarityIndex
from repro.api.registry import (
    available_backends,
    create_index,
    get_backend,
    open_index,
    register_backend,
)
from repro.api.results import SearchResult

#: Names resolved lazily (PEP 562) from the dataset / evaluation / exact
#: layers, so importing :mod:`repro.api` from inside those layers stays
#: cycle-free.
_LAZY_EXPORTS = {
    "containment_similarity": "repro.exact",
    "jaccard_similarity": "repro.exact",
    "evaluate_search_method": "repro.evaluation",
    "exact_result_sets": "repro.evaluation",
    "generate_zipf_dataset": "repro.datasets",
    "load_proxy": "repro.datasets",
    "sample_queries": "repro.datasets",
    "SimilarityService": "repro.serving",
    "run_closed_loop": "repro.serving",
    "run_load": "repro.serving",
}

__all__ = [
    # protocol
    "SimilarityIndex",
    "Capabilities",
    "BackendStatistics",
    "SearchResult",
    # configs
    "IndexConfig",
    "GBKMVConfig",
    "KMVConfig",
    "GKMVConfig",
    "LSHEnsembleConfig",
    "AsymmetricMinHashConfig",
    "ExactSearchConfig",
    "ShardedConfig",
    "ServingConfig",
    # registry
    "create_index",
    "open_index",
    "available_backends",
    "get_backend",
    "register_backend",
    # errors
    "CapabilityError",
    "ConfigurationError",
    "SnapshotFormatError",
    "UnknownBackendError",
    # convenience re-exports
    "containment_similarity",
    "jaccard_similarity",
    "evaluate_search_method",
    "exact_result_sets",
    "generate_zipf_dataset",
    "load_proxy",
    "sample_queries",
    # serving layer (lazy: repro.serving)
    "SimilarityService",
    "run_closed_loop",
    "run_load",
]


def __getattr__(name: str):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
