"""The result type shared by every search backend.

Lives in :mod:`repro.api` because it is part of the public index
protocol: every :class:`~repro.api.SimilarityIndex` backend — native or
adapted — returns its hits as :class:`SearchResult` tuples.
:mod:`repro.core.index` re-exports it, so historical imports keep
working.
"""

from __future__ import annotations

from typing import NamedTuple


class SearchResult(NamedTuple):
    """One hit of a containment similarity search.

    A ``NamedTuple`` rather than a dataclass: result lists run to tens of
    thousands of hits per workload, and tuple construction is what keeps
    materialising them off the query-engine profile.

    Attributes
    ----------
    record_id:
        Position of the record in the indexed dataset.
    score:
        Estimated containment similarity ``Ĉ(Q, X)``.
    """

    record_id: int
    score: float
