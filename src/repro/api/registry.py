"""String-keyed backend registry and self-describing snapshot opening.

The registry maps backend ids (``"gbkmv"``, ``"lsh-ensemble"``, …) to
their :class:`~repro.api.interface.SimilarityIndex` classes, so new
backends plug in as pure registry entries::

    from repro.api import create_index, available_backends, open_index

    index = create_index("gbkmv", records, GBKMVConfig(space_fraction=0.1))
    index.save("index.npz")
    restored = open_index("index.npz")   # dispatches on the embedded backend id

Snapshots are self-describing: every persistent backend embeds an
``api_meta`` entry (format tag + backend id + format version) in its
npz, and :func:`open_index` routes the file to the right backend's
``load`` without the caller knowing what produced it.  Snapshots from
before the tag existed are recognised by their legacy payload keys.
"""

from __future__ import annotations

import inspect
import json
import zipfile
from pathlib import Path
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro._errors import ConfigurationError, SnapshotFormatError, UnknownBackendError
from repro.api.config import IndexConfig
from repro.api.interface import SimilarityIndex

#: Format tag embedded in every self-describing snapshot.
SNAPSHOT_FORMAT = "repro.api/index"

#: npz entry name of the self-describing snapshot metadata.
API_META_KEY = "api_meta"

#: File name of the manifest inside a directory snapshot.
SNAPSHOT_MANIFEST = "manifest.json"

_BACKENDS: dict[str, type[SimilarityIndex]] = {}
_builtin_loaded = False

#: Payload keys that identify snapshots written before the ``api_meta``
#: tag existed, mapped to the backend that wrote them.
_LEGACY_PAYLOAD_KEYS = {
    "index_meta": "gbkmv",
    "kmv_meta": "kmv",
}


def _ensure_builtin_backends() -> None:
    """Import (and thereby register) the built-in backends, once.

    Deferred so that :mod:`repro.api` stays importable from inside
    :mod:`repro.core` — the native backends import the interface at
    module load, and resolve the registry only at first use.
    """
    global _builtin_loaded
    if not _builtin_loaded:
        _builtin_loaded = True
        from repro.api import backends as _backends  # noqa: F401  (registers)


def register_backend(
    cls: type[SimilarityIndex], backend_id: str | None = None
) -> type[SimilarityIndex]:
    """Register a :class:`SimilarityIndex` class under its backend id.

    Re-registering the same class is a no-op; registering a *different*
    class under a taken id is a :class:`ConfigurationError`.  Returns the
    class, so it is usable as a decorator.
    """
    if not (isinstance(cls, type) and issubclass(cls, SimilarityIndex)):
        raise ConfigurationError(
            f"{cls!r} is not a SimilarityIndex subclass and cannot be registered"
        )
    key = cls.backend_id if backend_id is None else str(backend_id)
    if not key:
        raise ConfigurationError(
            f"{cls.__name__} declares no backend_id and none was given"
        )
    existing = _BACKENDS.get(key)
    if existing is not None and existing is not cls:
        raise ConfigurationError(
            f"backend id {key!r} is already registered to {existing.__name__}"
        )
    _BACKENDS[key] = cls
    return cls


def available_backends() -> tuple[str, ...]:
    """Sorted ids of every registered backend."""
    _ensure_builtin_backends()
    return tuple(sorted(_BACKENDS))


def get_backend(backend_id: str) -> type[SimilarityIndex]:
    """The :class:`SimilarityIndex` class registered under ``backend_id``."""
    _ensure_builtin_backends()
    try:
        return _BACKENDS[str(backend_id)]
    except KeyError:
        raise UnknownBackendError(
            f"unknown backend {backend_id!r}; available backends: "
            f"{', '.join(available_backends())}"
        ) from None


def create_index(
    backend_id: str,
    records: Sequence[Iterable[object]],
    config: IndexConfig | None = None,
) -> SimilarityIndex:
    """Build a registered backend over a dataset.

    ``config`` must be an instance of the backend's declared
    ``config_type`` (or ``None`` for its defaults); a mismatched config
    is rejected up front.
    """
    return get_backend(backend_id).from_records(records, config=config)


# ------------------------------------------------------------------ snapshots
def snapshot_tag(backend_id: str, version: int) -> np.ndarray:
    """The ``api_meta`` npz entry a persistent backend embeds in its save."""
    return np.array(
        json.dumps(
            {
                "format": SNAPSHOT_FORMAT,
                "backend": str(backend_id),
                "version": int(version),
            }
        )
    )


def read_snapshot_tag(arrays: Mapping[str, np.ndarray]) -> dict | None:
    """Parse the ``api_meta`` tag out of loaded npz arrays (``None`` if absent)."""
    if API_META_KEY not in arrays:
        return None
    try:
        tag = json.loads(str(arrays[API_META_KEY][()]))
    except (json.JSONDecodeError, IndexError) as error:
        raise SnapshotFormatError(f"malformed snapshot metadata: {error}") from error
    if not isinstance(tag, dict) or tag.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotFormatError(
            f"unrecognised snapshot format tag {tag!r} "
            f"(this build reads {SNAPSHOT_FORMAT!r})"
        )
    return tag


def directory_manifest(backend_id: str, version: int, **extra: object) -> dict:
    """The ``manifest.json`` payload of a directory snapshot.

    The directory counterpart of :func:`snapshot_tag`: the same format
    tag, backend id and format version, plus whatever backend-specific
    entries the writer appends (array names, shard layout, …).
    """
    manifest: dict = {
        "format": SNAPSHOT_FORMAT,
        "backend": str(backend_id),
        "version": int(version),
    }
    manifest.update(extra)
    return manifest


def read_directory_manifest(path) -> dict:
    """Parse and validate the ``manifest.json`` of a directory snapshot.

    Raises
    ------
    SnapshotFormatError
        If the manifest is missing, unreadable, malformed, or carries a
        foreign format tag.
    """
    manifest_path = Path(path) / SNAPSHOT_MANIFEST
    try:
        text = manifest_path.read_text(encoding="utf-8")
    except OSError as error:
        raise SnapshotFormatError(
            f"{str(path)!r} is not a directory index snapshot "
            f"(cannot read its {SNAPSHOT_MANIFEST}: {error})"
        ) from error
    try:
        manifest = json.loads(text)
    except json.JSONDecodeError as error:
        raise SnapshotFormatError(
            f"malformed snapshot manifest in {str(path)!r}: {error}"
        ) from error
    if not isinstance(manifest, dict) or manifest.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotFormatError(
            f"unrecognised snapshot manifest in {str(path)!r} "
            f"(this build reads {SNAPSHOT_FORMAT!r})"
        )
    return manifest


def open_index(path, mmap: bool = False) -> SimilarityIndex:
    """Open any saved index, dispatching on its embedded backend id.

    Reads the snapshot's self-describing metadata — the ``api_meta`` tag
    of an npz snapshot, or the ``manifest.json`` of a directory snapshot
    (falling back to legacy payload sniffing for npz snapshots written
    before the tag existed) — and hands the path to the matching
    backend's ``load``.

    Parameters
    ----------
    path:
        An npz snapshot file or a directory snapshot.
    mmap:
        Memory-map the large columns instead of reading them into RAM.
        Only directory snapshots can be mapped (npz archives store
        compressed members), and only for backends whose ``load``
        accepts an ``mmap`` keyword.

    Raises
    ------
    SnapshotFormatError
        If the path is not a recognisable index snapshot.
    UnknownBackendError
        If the snapshot names a backend this build does not register.
    ConfigurationError
        If ``mmap=True`` and the resolved backend cannot memory-map.
    """
    if Path(path).is_dir():
        manifest = read_directory_manifest(path)
        backend_id = str(manifest.get("backend", ""))
        if not backend_id:
            raise SnapshotFormatError(
                f"snapshot manifest in {str(path)!r} names no backend"
            )
        return _dispatch_load(backend_id, path, mmap)
    try:
        # A .npy (or other non-archive) file np.load accepts comes back as
        # a bare ndarray without `files`/context-manager support — reject
        # it as a format error like any other unrecognisable file.
        with np.load(path, allow_pickle=False) as data:
            files = set(data.files)
            tag = read_snapshot_tag(
                {API_META_KEY: data[API_META_KEY]} if API_META_KEY in files else {}
            )
    except (OSError, TypeError, ValueError, zipfile.BadZipFile) as error:
        raise SnapshotFormatError(
            f"cannot read {path!r} as an index snapshot: {error}"
        ) from error
    if tag is not None:
        backend_id = str(tag.get("backend", ""))
    else:
        backend_id = next(
            (
                backend
                for key, backend in _LEGACY_PAYLOAD_KEYS.items()
                if key in files
            ),
            "",
        )
        if not backend_id:
            raise SnapshotFormatError(
                f"{path!r} is not a repro index snapshot (no {API_META_KEY!r} "
                "tag and no recognisable legacy payload)"
            )
    return _dispatch_load(backend_id, path, mmap)


def _dispatch_load(backend_id: str, path, mmap: bool) -> SimilarityIndex:
    """Route a snapshot path to ``backend.load``, forwarding ``mmap``."""
    backend = get_backend(backend_id)
    if not mmap:
        return backend.load(path)
    if "mmap" not in inspect.signature(backend.load).parameters:
        raise ConfigurationError(
            f"backend {backend_id!r} does not support memory-mapped loading"
        )
    return backend.load(path, mmap=True)
