"""Typed per-backend build configurations.

One frozen dataclass per registered backend replaces the sprawling
keyword constructors of the historical entry points: a config carries
exactly the knobs its backend understands, so
``create_index(backend, records, config)`` can validate the pairing
up front (a :class:`GBKMVConfig` handed to the ``"kmv"`` backend is a
:class:`~repro._errors.ConfigurationError`, not a silent ``TypeError``
three frames deep).

Every config class is immutable and fully defaulted — ``create_index``
with no config builds the backend under the same defaults the paper's
evaluation uses.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class IndexConfig:
    """Base class of all backend build configurations.

    Backends that take no build parameters (the exact searchers) use it
    directly; every parameterised backend subclasses it with its own
    typed fields.
    """


@dataclass(frozen=True)
class ExactSearchConfig(IndexConfig):
    """Build configuration of the exact backends (no parameters).

    A dedicated (empty) type rather than the bare :class:`IndexConfig`
    so that handing an exact backend another backend's config is a
    type mismatch, not a silently accepted superclass instance.
    """


@dataclass(frozen=True)
class GBKMVConfig(IndexConfig):
    """Build configuration of the ``"gbkmv"`` backend (Algorithm 1).

    Attributes
    ----------
    space_fraction:
        Space budget as a fraction of the dataset size; ignored when
        ``space_budget`` is given.
    space_budget:
        Absolute budget ``b`` in signature-value units.
    buffer_size:
        Explicit buffer size ``r``, or ``"auto"`` for the Section IV-C6
        cost model.
    seed:
        Seed of the shared :class:`~repro.hashing.UnitHash` and of the
        cost model's pair sampling.
    cost_model_pair_sample:
        Number of record pairs the cost model averages over.
    method:
        ``"bulk"`` (vectorised whole-dataset pipeline) or
        ``"per-record"`` (historical loop, benchmark baseline).
    """

    space_fraction: float = 0.10
    space_budget: float | None = None
    buffer_size: int | str = "auto"
    seed: int = 0
    cost_model_pair_sample: int = 256
    method: str = "bulk"


@dataclass(frozen=True)
class KMVConfig(IndexConfig):
    """Build configuration of the ``"kmv"`` backend (Theorem-1 equal allocation)."""

    space_fraction: float = 0.10
    space_budget: float | None = None
    seed: int = 0
    method: str = "bulk"


@dataclass(frozen=True)
class GKMVConfig(IndexConfig):
    """Build configuration of the ``"gkmv"`` backend (global threshold, no buffer)."""

    space_fraction: float = 0.10
    space_budget: float | None = None
    seed: int = 0
    method: str = "bulk"


@dataclass(frozen=True)
class LSHEnsembleConfig(IndexConfig):
    """Build configuration of the ``"lsh-ensemble"`` backend.

    Attributes
    ----------
    num_perm:
        Signature length (number of MinHash functions).
    num_partitions:
        Number of equal-depth size partitions.
    seed:
        Master seed of the hash family.
    false_positive_weight, false_negative_weight:
        Relative costs in the per-query ``(b, r)`` optimisation.
    verify:
        When true, candidates are filtered by the Equation-15
        signature-based containment estimate (scores become meaningful);
        the original LSH-E returns raw, unscored candidates.
    """

    num_perm: int = 256
    num_partitions: int = 32
    seed: int = 0
    false_positive_weight: float = 0.5
    false_negative_weight: float = 0.5
    verify: bool = False


@dataclass(frozen=True)
class AsymmetricMinHashConfig(IndexConfig):
    """Build configuration of the ``"asymmetric-minhash"`` backend."""

    num_perm: int = 256
    seed: int = 0


#: Visibility policies :class:`ServingConfig` accepts.
VISIBILITY_POLICIES = ("read-your-writes", "bounded-staleness")


@dataclass(frozen=True)
class ServingConfig:
    """Configuration of the :class:`repro.serving.SimilarityService` front.

    Not an :class:`IndexConfig`: it does not build an index, it wraps a
    built one — but it lives here so the whole typed-configuration
    surface of the library is one module.

    Attributes
    ----------
    max_batch_size:
        Upper bound on the number of requests one micro-batch executes
        as a single ``search_many`` / ``top_k_many`` call.  ``1``
        disables micro-batching (every request runs alone — the
        unbatched baseline of ``BENCH_serving.json``).
    max_batch_delay_us:
        The micro-batch window, in microseconds: how long the first
        request of a batch may wait for company before the batch
        executes anyway.  ``0`` executes every batch as soon as the
        event loop drains the submissions already queued.
    visibility:
        Write-visibility policy of the write buffer.
        ``"read-your-writes"`` flushes buffered writes before every
        query batch, so a client that awaited a write always sees it.
        ``"bounded-staleness"`` lets queries run against the index as
        is; buffered writes become visible within
        ``max_write_lag_ms`` (or earlier, when the buffer fills).
    max_write_lag_ms:
        Flush deadline, in milliseconds, for buffered writes.  Under
        bounded staleness it is the staleness bound; under
        read-your-writes it merely stops writes from sitting in the
        buffer on a query-free stream.
    max_buffered_writes:
        Size-triggered flush threshold: the buffer flushes as soon as
        it holds this many write operations, regardless of policy.
    """

    max_batch_size: int = 64
    max_batch_delay_us: float = 200.0
    visibility: str = "read-your-writes"
    max_write_lag_ms: float = 50.0
    max_buffered_writes: int = 512


@dataclass(frozen=True)
class ShardedConfig(IndexConfig):
    """Build configuration of the ``"sharded"`` backend.

    Attributes
    ----------
    num_shards:
        Number of independent inner stores the dataset is partitioned
        across (by record-id hash).
    inner_backend:
        Registry id of the backend each shard runs; must be a dynamic
        backend and cannot be ``"sharded"`` itself.
    inner_config:
        Build configuration for the inner backend (its ``config_type``),
        or ``None`` for that backend's defaults.
    max_workers:
        Thread-pool width for fan-out operations; ``None`` sizes the
        pool to ``min(os.cpu_count(), num_shards)``.
    build_workers:
        Executor width for the *construction* fan-out (per-shard bulk
        sketching); ``None`` sizes it like ``max_workers``.  An explicit
        value below ``num_shards`` acts as an oversubscription guard.
        Only the native sketch backends (gbkmv/gkmv/kmv) build in
        parallel.
    build_executor:
        ``"thread"`` (default — the sketch kernels release the GIL) or
        ``"process"`` to run the pickle-friendly array stages of the
        build on a process pool.
    """

    num_shards: int = 4
    inner_backend: str = "gbkmv"
    inner_config: IndexConfig | None = None
    max_workers: int | None = None
    build_workers: int | None = None
    build_executor: str = "thread"
