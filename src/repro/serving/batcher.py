"""Query micro-batching: concurrent requests fused into one engine call.

The fused query engine answers a workload of queries far faster than the
same queries one at a time (``BENCH_query_engine.json``), but a live
service receives them one at a time.  :class:`MicroBatcher` recovers the
workload shape at the front door: requests submitted inside a small
window (``max_delay`` seconds, ``max_batch_size`` requests) accumulate
per *batch key* — requests are only fused when one engine call can
answer them all, e.g. searches sharing a threshold — and execute as one
batch, fanning the per-request results back to per-request futures.

The batcher is transport-agnostic: it knows nothing about indexes, only
an async ``execute(key, items) -> results`` callable supplied by the
owner (:class:`repro.serving.service.SimilarityService` runs the fused
engine call on a worker thread there).  All batcher state lives on the
event loop thread — no locks.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Awaitable, Callable, Hashable, Sequence

from repro._errors import ConfigurationError


@dataclass(frozen=True)
class BatcherStats:
    """Cumulative counters of one :class:`MicroBatcher`.

    ``requests / batches`` is the achieved fusion factor; ``largest_batch``
    shows whether the configured ceiling was ever reached.
    """

    requests: int = 0
    batches: int = 0
    largest_batch: int = 0

    @property
    def mean_batch_size(self) -> float:
        """Average requests per executed batch (0.0 before any batch)."""
        return self.requests / self.batches if self.batches else 0.0


class _Bucket:
    """Requests accumulated for one batch key, awaiting execution."""

    __slots__ = ("items", "futures", "timer")

    def __init__(self) -> None:
        self.items: list = []
        self.futures: list[asyncio.Future] = []
        self.timer: asyncio.TimerHandle | asyncio.Handle | None = None


class MicroBatcher:
    """Accumulate per-key requests inside a window; execute them as batches.

    Parameters
    ----------
    execute:
        Async callable receiving ``(key, items)`` and returning one
        result per item, in item order.
    max_batch_size:
        Batch ceiling; a bucket reaching it executes immediately.
        ``1`` degenerates to one execution per request (the unbatched
        baseline).
    max_delay:
        The window, in **seconds**: how long the first request of a
        bucket waits for company.  ``0`` executes once the event loop
        drains the submissions already queued (one ``call_soon`` hop),
        which still fuses bursts submitted in the same loop iteration.
    """

    def __init__(
        self,
        execute: Callable[[Hashable, Sequence], Awaitable[Sequence]],
        max_batch_size: int = 64,
        max_delay: float = 0.0002,
    ) -> None:
        if int(max_batch_size) < 1:
            raise ConfigurationError("max_batch_size must be at least 1")
        if float(max_delay) < 0.0:
            raise ConfigurationError("max_delay must be non-negative")
        self._execute = execute
        self._max_batch_size = int(max_batch_size)
        self._max_delay = float(max_delay)
        self._buckets: dict[Hashable, _Bucket] = {}
        self._tasks: set[asyncio.Task] = set()
        self._closed = False
        self._requests = 0
        self._batches = 0
        self._largest_batch = 0

    # ------------------------------------------------------------------ submit
    def submit(self, key: Hashable, item) -> asyncio.Future:
        """Enqueue one request; the returned future resolves to its result."""
        if self._closed:
            raise ConfigurationError("the micro-batcher is closed")
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = _Bucket()
            self._buckets[key] = bucket
        bucket.items.append(item)
        bucket.futures.append(future)
        self._requests += 1
        if len(bucket.items) >= self._max_batch_size:
            self._fire(key)
        elif bucket.timer is None:
            if self._max_delay > 0.0:
                bucket.timer = loop.call_later(self._max_delay, self._fire, key)
            else:
                bucket.timer = loop.call_soon(self._fire, key)
        return future

    # ------------------------------------------------------------------- fire
    def _fire(self, key: Hashable) -> None:
        """Detach a bucket and launch its batch execution task."""
        bucket = self._buckets.pop(key, None)
        if bucket is None:
            return
        if bucket.timer is not None:
            bucket.timer.cancel()
        self._batches += 1
        self._largest_batch = max(self._largest_batch, len(bucket.items))
        task = asyncio.get_running_loop().create_task(self._run(key, bucket))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _run(self, key: Hashable, bucket: _Bucket) -> None:
        try:
            results = await self._execute(key, bucket.items)
            if len(results) != len(bucket.items):
                raise ConfigurationError(
                    f"batch execution returned {len(results)} results for "
                    f"{len(bucket.items)} requests"
                )
        except BaseException as error:  # noqa: BLE001 - fan the error out
            for future in bucket.futures:
                if not future.done():
                    future.set_exception(error)
            return
        for future, result in zip(bucket.futures, results):
            if not future.done():
                future.set_result(result)

    # --------------------------------------------------------------- lifecycle
    def flush(self) -> None:
        """Execute every pending bucket now, without waiting for windows."""
        for key in list(self._buckets):
            self._fire(key)

    async def drain(self) -> None:
        """Flush and wait until every in-flight batch has delivered."""
        self.flush()
        while self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)

    async def close(self) -> None:
        """Drain, then reject all further submissions."""
        self._closed = True
        await self.drain()

    # ------------------------------------------------------------- inspection
    @property
    def pending(self) -> int:
        """Requests accumulated but not yet fired."""
        return sum(len(bucket.items) for bucket in self._buckets.values())

    def stats(self) -> BatcherStats:
        """Snapshot of the cumulative counters."""
        return BatcherStats(
            requests=self._requests,
            batches=self._batches,
            largest_batch=self._largest_batch,
        )
