""":class:`SimilarityService` — the asyncio serving front of any backend.

The service wraps one built :class:`~repro.api.SimilarityIndex` (any
registered backend) behind an async request API shaped like the index
surface itself::

    service = SimilarityService(index, ServingConfig())
    async with service:
        hits = await service.search(query, threshold=0.5)
        top = await service.top_k(query, k=10)
        record_id = await service.insert(record)

Three mechanisms make the single-request API run at workload speed:

- **Query micro-batching** (:class:`~repro.serving.batcher.MicroBatcher`):
  concurrent ``search``/``top_k`` calls landing inside the configured
  window fuse into one ``search_many``/``top_k_many`` engine call.
  Requests fuse only when one call can answer them all — same operation,
  same threshold (or ``k``) — and the engine guarantees batched results
  are identical to per-query calls, so fusion is invisible to clients.
- **Write coalescing** (:class:`~repro.serving.write_buffer.WriteCoalescer`):
  ``insert``/``delete``/``update`` buffer in arrival order with eagerly
  assigned ids and flush as bulk ingests, under an explicit visibility
  policy — ``read-your-writes`` (the buffer flushes before every query
  batch) or ``bounded-staleness`` (queries never wait on writes; the
  buffer flushes within ``max_write_lag_ms``).  Either way a full buffer
  (``max_buffered_writes``) flushes immediately.
- **One worker lane**: every index call — batch queries and write
  flushes — runs through a single worker thread off the event loop, in
  submission order.  The indexes are not thread-safe under mutation;
  the single lane makes flush-then-query ordering deterministic and
  keeps the event loop free to accumulate the next batch while the
  engine runs (the kernels release the GIL).

Lifecycle: ``start`` is implicit in the first request; ``drain`` fires
pending batches and flushes every buffered write; ``close`` drains, then
shuts down the batcher, the worker lane, and (by default) the wrapped
index itself — releasing e.g. the sharded backend's executor pools
deterministically.  ``async with`` does start/close automatically.

The service assumes it is the index's **only writer** while open (the
eager id assignment depends on it); concurrent read-only access from
outside is harmless but unserialised.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro._errors import CapabilityError, ConfigurationError
from repro.api.config import VISIBILITY_POLICIES, ServingConfig
from repro.api.interface import SimilarityIndex
from repro.api.results import SearchResult
from repro.serving.batcher import BatcherStats, MicroBatcher
from repro.serving.write_buffer import WriteBufferStats, WriteCoalescer

_SEARCH = "search"
_TOP_K = "top_k"


@dataclass(frozen=True)
class ServiceStats:
    """One snapshot of a service's cumulative counters.

    ``batcher.requests / batcher.batches`` is the query fusion factor;
    ``writes.inserts / writes.insert_batches`` the write coalescing
    factor.  ``writes`` is ``None`` for a service over a static index.
    """

    batcher: BatcherStats
    writes: WriteBufferStats | None


def _validate_config(config: ServingConfig) -> ServingConfig:
    if int(config.max_batch_size) < 1:
        raise ConfigurationError("max_batch_size must be at least 1")
    if float(config.max_batch_delay_us) < 0.0:
        raise ConfigurationError("max_batch_delay_us must be non-negative")
    if config.visibility not in VISIBILITY_POLICIES:
        raise ConfigurationError(
            f"unknown visibility policy {config.visibility!r}; "
            f"use one of {VISIBILITY_POLICIES}"
        )
    if float(config.max_write_lag_ms) < 0.0:
        raise ConfigurationError("max_write_lag_ms must be non-negative")
    if int(config.max_buffered_writes) < 1:
        raise ConfigurationError("max_buffered_writes must be at least 1")
    return config


class SimilarityService:
    """Async micro-batching / write-coalescing front over one index.

    Parameters
    ----------
    index:
        Any built backend.  Static backends serve queries only — their
        write methods keep raising
        :class:`~repro._errors.CapabilityError` through the service.
    config:
        A :class:`~repro.api.ServingConfig`; ``None`` uses the defaults.
    next_record_id:
        Override of the write buffer's id seed (rarely needed — every
        dynamic backend in the library exposes ``next_record_id``).
    close_index:
        Whether :meth:`close` also closes the wrapped index (default
        true; pass false when the index outlives the service).
    """

    def __init__(
        self,
        index: SimilarityIndex,
        config: ServingConfig | None = None,
        *,
        next_record_id: int | None = None,
        close_index: bool = True,
    ) -> None:
        self._index = index
        self._config = _validate_config(config or ServingConfig())
        self._close_index = bool(close_index)
        self._writes = (
            WriteCoalescer(index, next_record_id=next_record_id)
            if index.capabilities.dynamic
            else None
        )
        self._batcher = MicroBatcher(
            self._execute_batch,
            max_batch_size=self._config.max_batch_size,
            max_delay=self._config.max_batch_delay_us / 1e6,
        )
        self._lane: ThreadPoolExecutor | None = None
        self._flush_tasks: set[asyncio.Task] = set()
        self._lag_timer: asyncio.TimerHandle | None = None
        self._closed = False

    # --------------------------------------------------------------- plumbing
    @property
    def index(self) -> SimilarityIndex:
        """The wrapped index (do not mutate it while the service is open)."""
        return self._index

    @property
    def config(self) -> ServingConfig:
        """The validated serving configuration."""
        return self._config

    def start(self) -> "SimilarityService":
        """Create the worker lane eagerly (otherwise the first request does)."""
        self._require_open()
        if self._lane is None:
            self._lane = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-serving"
            )
        return self

    def _require_open(self) -> None:
        if self._closed:
            raise ConfigurationError("the serving layer is closed")

    async def _in_lane(self, fn, *args):
        """Run one index call on the worker lane, in submission order."""
        self.start()
        return await asyncio.get_running_loop().run_in_executor(
            self._lane, fn, *args
        )

    async def _execute_batch(self, key, items: Sequence) -> Sequence:
        """Run one fused engine call for a batch (plus any due RYW flush)."""
        kind, parameter, has_sizes = key
        queries = [item[0] for item in items]
        sizes = [item[1] for item in items] if has_sizes else None
        flush_first = (
            self._writes is not None
            and self._config.visibility == "read-your-writes"
        )

        def work():
            # Flush inside the same lane slot as the queries: the pair is
            # atomic relative to every other flush and batch in the lane.
            if flush_first and self._writes.pending:
                self._writes.flush()
            if kind == _SEARCH:
                return self._index.search_many(queries, parameter, query_sizes=sizes)
            return self._index.top_k_many(queries, parameter, query_sizes=sizes)

        return await self._in_lane(work)

    # ----------------------------------------------------------------- reads
    async def search(
        self,
        query: Iterable[object],
        threshold: float,
        query_size: int | None = None,
    ) -> list[SearchResult]:
        """Serve one containment search; identical to ``index.search``.

        Requests sharing a threshold (and ``query_size`` presence) that
        land inside the micro-batch window execute as one
        ``search_many`` call.
        """
        self._require_open()
        key = (_SEARCH, float(threshold), query_size is not None)
        item = (list(query), None if query_size is None else int(query_size))
        return await self._batcher.submit(key, item)

    async def top_k(
        self, query: Iterable[object], k: int, query_size: int | None = None
    ) -> list[SearchResult]:
        """Serve one top-k query; identical to ``index.top_k``."""
        self._require_open()
        if int(k) < 1:
            raise ConfigurationError("k must be positive")
        key = (_TOP_K, int(k), query_size is not None)
        item = (list(query), None if query_size is None else int(query_size))
        return await self._batcher.submit(key, item)

    # ---------------------------------------------------------------- writes
    def _writes_or_raise(self) -> WriteCoalescer:
        self._require_open()
        if self._writes is None:
            raise CapabilityError(
                f"backend {self._index.backend_id or type(self._index).__name__!r} "
                "is not dynamic; the serving layer cannot buffer writes for it"
            )
        return self._writes

    async def insert(self, record: Iterable[object]) -> int:
        """Buffer an insert; returns its (already final) record id.

        Visibility follows the configured policy: under
        ``read-your-writes`` any later query through this service sees
        the record; under ``bounded-staleness`` it appears within
        ``max_write_lag_ms``.
        """
        record_id = self._writes_or_raise().insert(record)
        self._after_write()
        return record_id

    async def delete(self, record_id: int) -> None:
        """Buffer a delete (the target may itself still be buffered)."""
        self._writes_or_raise().delete(record_id)
        self._after_write()

    async def update(self, record_id: int, record: Iterable[object]) -> int:
        """Buffer an in-place replace; returns the unchanged record id."""
        result = self._writes_or_raise().update(record_id, record)
        self._after_write()
        return result

    def _after_write(self) -> None:
        """Arm the flush triggers: buffer-full now, or the lag deadline."""
        if self._writes.pending >= self._config.max_buffered_writes:
            if self._lag_timer is not None:
                self._lag_timer.cancel()
                self._lag_timer = None
            self._spawn_flush()
        elif self._lag_timer is None:
            self._lag_timer = asyncio.get_running_loop().call_later(
                self._config.max_write_lag_ms / 1e3, self._lag_flush
            )

    def _lag_flush(self) -> None:
        self._lag_timer = None
        if not self._closed and self._writes.pending:
            self._spawn_flush()

    def _spawn_flush(self) -> None:
        task = asyncio.get_running_loop().create_task(
            self._in_lane(self._writes.flush)
        )
        self._flush_tasks.add(task)
        task.add_done_callback(self._flush_done)

    def _flush_done(self, task: asyncio.Task) -> None:
        self._flush_tasks.discard(task)
        # A background flush has no awaiter; surface its failure instead
        # of letting the event loop's "exception was never retrieved"
        # warning swallow it.
        if not task.cancelled() and task.exception() is not None:
            asyncio.get_running_loop().call_exception_handler(
                {
                    "message": "serving write-buffer flush failed",
                    "exception": task.exception(),
                }
            )

    # -------------------------------------------------------------- lifecycle
    async def flush_writes(self) -> int:
        """Flush the write buffer now; returns the operations applied."""
        self._require_open()
        if self._writes is None or not self._writes.pending:
            return 0
        return await self._in_lane(self._writes.flush)

    async def drain(self) -> None:
        """Deliver everything in flight: batches executed, writes flushed.

        Fires every pending micro-batch immediately, waits for their
        results to fan out, waits for background flushes, and flushes
        whatever the write buffer still holds.  The service stays open.
        """
        self._require_open()
        await self._batcher.drain()
        while self._flush_tasks:
            await asyncio.gather(*list(self._flush_tasks), return_exceptions=True)
        if self._writes is not None and self._writes.pending:
            await self._in_lane(self._writes.flush)

    async def close(self) -> None:
        """Drain, then shut everything down; idempotent.

        Stops the batcher (later submissions raise), cancels the lag
        timer, joins the worker lane, and — unless constructed with
        ``close_index=False`` — closes the wrapped index, releasing
        e.g. a sharded backend's fan-out pools deterministically.
        """
        if self._closed:
            return
        await self.drain()
        await self._batcher.close()
        if self._lag_timer is not None:
            self._lag_timer.cancel()
            self._lag_timer = None
        self._closed = True
        if self._lane is not None:
            self._lane.shutdown(wait=True)
            self._lane = None
        if self._close_index:
            self._index.close()

    async def __aenter__(self) -> "SimilarityService":
        return self.start()

    async def __aexit__(self, exc_type, exc_value, traceback) -> None:
        await self.close()

    # ------------------------------------------------------------- inspection
    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has completed."""
        return self._closed

    @property
    def pending_writes(self) -> int:
        """Buffered (not yet flushed) write operations."""
        return 0 if self._writes is None else self._writes.pending

    def stats(self) -> ServiceStats:
        """Snapshot of the batching and coalescing counters."""
        return ServiceStats(
            batcher=self._batcher.stats(),
            writes=None if self._writes is None else self._writes.stats(),
        )
