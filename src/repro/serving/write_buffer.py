"""Write coalescing: buffered inserts/deletes/updates, flushed in bulk.

A live service receives writes one at a time, but the dynamic backends
ingest an order of magnitude faster through ``insert_many`` (the bulk
pipeline) than through per-record ``insert`` calls.
:class:`WriteCoalescer` closes that gap without changing semantics: it
buffers write operations in arrival order, assigns record ids *eagerly*
(the sequential-id invariant every dynamic backend in the library
declares via ``next_record_id``), and on :meth:`flush` replays the
buffer in order with maximal runs of consecutive inserts collapsed into
one ``insert_many`` call.

Because order is preserved, every interleaving is well-defined: a
delete of a buffered-but-unflushed insert simply lands after it in the
same flush (the record is never visible to any query), and an update
racing a flush goes to the *next* flush — the flush snapshots the
buffer atomically and operations enqueued during it stay queued.

The coalescer is deliberately synchronous and index-agnostic: the
asyncio serving layer (:mod:`repro.serving.service`) drives it from a
worker thread under its visibility policy, and the dynamic-stream
harness (:func:`repro.evaluation.harness.evaluate_dynamic_stream`)
drives it inline — one coalescing path for service and harness.

The coalescer assumes it is the **single writer** of the index it
wraps; a concurrent writer would break the eager id assignment (the
flush validates assigned ids and raises if the assumption was
violated).
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro._errors import ConfigurationError
from repro.api.interface import SimilarityIndex

_REUSABLE_RECORD_TYPES = (list, tuple, set, frozenset, np.ndarray)

_INSERT = "insert"
_DELETE = "delete"
_UPDATE = "update"


def _materialize_record(record: Iterable[object]):
    """The record as a re-iterable container, validated non-empty."""
    materialized = (
        record if isinstance(record, _REUSABLE_RECORD_TYPES) else list(record)
    )
    if isinstance(materialized, np.ndarray):
        if materialized.size == 0:
            raise ConfigurationError("cannot buffer an empty record")
    elif not materialized:
        raise ConfigurationError("cannot buffer an empty record")
    return materialized


@dataclass(frozen=True)
class WriteBufferStats:
    """Cumulative counters of one :class:`WriteCoalescer`.

    ``insert_batches`` counts the ``insert_many`` calls issued by
    flushes, so ``inserts / insert_batches`` is the achieved coalescing
    factor; ``pending`` is the current (not yet flushed) buffer depth.
    """

    inserts: int = 0
    deletes: int = 0
    updates: int = 0
    flushes: int = 0
    flushed_operations: int = 0
    insert_batches: int = 0
    pending: int = 0


class WriteCoalescer:
    """Order-preserving write buffer over one dynamic :class:`SimilarityIndex`.

    Parameters
    ----------
    index:
        The dynamic index every flush applies to.
    next_record_id:
        Seed of the eager id assignment.  ``None`` reads the index's
        ``next_record_id`` property; an explicit value overrides it
        (the dynamic-stream harness passes the stream's own id base).

    Plain searcher objects that merely quack like a dynamic index
    (``insert_many``/``delete``) are accepted too — the evaluation
    harness never dropped its duck-typing — but they must then be given
    an explicit ``next_record_id``.

    Raises
    ------
    ConfigurationError
        If the index is not dynamic, or neither the index nor the
        caller can name the next record id.
    """

    def __init__(
        self, index: SimilarityIndex, next_record_id: int | None = None
    ) -> None:
        if isinstance(index, SimilarityIndex):
            if not index.capabilities.dynamic:
                raise ConfigurationError(
                    f"backend {index.backend_id or type(index).__name__!r} is "
                    "not dynamic; a write buffer needs insert/delete/update "
                    "support"
                )
        elif not callable(getattr(index, "insert_many", None)) or not callable(
            getattr(index, "delete", None)
        ):
            raise ConfigurationError(
                f"{type(index).__name__} has no insert_many/delete; a write "
                "buffer needs a dynamic index"
            )
        if next_record_id is None:
            next_record_id = getattr(index, "next_record_id", None)
        if next_record_id is None:
            raise ConfigurationError(
                "the index does not expose next_record_id and none was given; "
                "pass next_record_id= explicitly to enable eager id assignment"
            )
        self._index = index
        self._next_id = int(next_record_id)
        self._ops: deque[tuple] = deque()
        # Guards the buffer, not the index: enqueues may race a flush
        # running on the service's worker thread.  The flush snapshots
        # the buffer under the lock and applies it outside, so enqueue
        # latency never includes index work.
        self._lock = threading.Lock()
        self._inserts = 0
        self._deletes = 0
        self._updates = 0
        self._flushes = 0
        self._flushed_operations = 0
        self._insert_batches = 0

    # ----------------------------------------------------------------- enqueue
    def insert(self, record: Iterable[object]) -> int:
        """Buffer an insert; returns the id the flush will assign to it.

        The id is final the moment this returns (sequential assignment,
        single writer): callers may delete or update it before the
        record ever reaches the index — the operations replay in order.
        """
        materialized = _materialize_record(record)
        with self._lock:
            record_id = self._next_id
            self._next_id += 1
            self._ops.append((_INSERT, materialized, record_id))
            self._inserts += 1
        return record_id

    def delete(self, record_id: int) -> None:
        """Buffer a delete of a flushed *or still-buffered* record.

        Ids are range-checked eagerly (an id no insert ever assigned is
        rejected here); deleting an already-deleted record surfaces at
        flush time, from the index itself.
        """
        record_id = int(record_id)
        with self._lock:
            if record_id < 0 or record_id >= self._next_id:
                raise ConfigurationError(f"unknown record id {record_id}")
            self._ops.append((_DELETE, record_id))
            self._deletes += 1

    def update(self, record_id: int, record: Iterable[object]) -> int:
        """Buffer an in-place replace; returns the (unchanged) record id."""
        materialized = _materialize_record(record)
        record_id = int(record_id)
        with self._lock:
            if record_id < 0 or record_id >= self._next_id:
                raise ConfigurationError(f"unknown record id {record_id}")
            self._ops.append((_UPDATE, record_id, materialized))
            self._updates += 1
        return record_id

    # ------------------------------------------------------------------ flush
    def flush(self) -> int:
        """Apply every buffered operation to the index, in order; return count.

        Maximal runs of consecutive inserts become one ``insert_many``
        call; deletes and updates apply individually between runs.  The
        buffer is snapshotted atomically up front: operations enqueued
        while the flush runs go to the next flush.  Each buffered
        operation is applied exactly once — if one raises, it is
        discarded, the operations after it are re-queued ahead of any
        concurrent enqueues, and the error propagates.
        """
        with self._lock:
            if not self._ops:
                return 0
            ops = list(self._ops)
            self._ops.clear()
            self._flushes += 1
        applied = 0  # operations known to have reached the index
        consumed = 0  # operations taken off the buffer (applied or failed)
        try:
            position = 0
            while position < len(ops):
                operation = ops[position]
                if operation[0] == _INSERT:
                    stop = position + 1
                    while stop < len(ops) and ops[stop][0] == _INSERT:
                        stop += 1
                    run = ops[position:stop]
                    # A failing bulk ingest consumes the whole run: how
                    # much of it landed is the backend's business, so
                    # none of it may be replayed.
                    consumed = stop
                    assigned = self._index.insert_many([op[1] for op in run])
                    self._check_assigned(assigned, run)
                    self._insert_batches += 1
                    applied = stop
                    position = stop
                else:
                    consumed = position + 1
                    if operation[0] == _DELETE:
                        self._index.delete(operation[1])
                    else:
                        self._index.update(operation[1], operation[2])
                    position += 1
                    applied = position
        except BaseException:
            # `applied` ops landed and the failing op/run is consumed;
            # the rest re-queue at the head (ahead of any concurrent
            # enqueues) so no later write is dropped or doubled.
            with self._lock:
                self._ops.extendleft(reversed(ops[consumed:]))
                self._flushed_operations += applied
            raise
        with self._lock:
            self._flushed_operations += applied
        return applied

    def _check_assigned(self, assigned: list[int], run: list[tuple]) -> None:
        if len(assigned) != len(run):
            raise ConfigurationError(
                f"insert_many returned {len(assigned)} ids for {len(run)} "
                "buffered inserts"
            )
        for got, op in zip(assigned, run):
            if int(got) != op[2]:
                raise ConfigurationError(
                    f"index assigned record id {got} where the write buffer "
                    f"promised {op[2]}; the buffer must be the index's only "
                    "writer"
                )

    # ------------------------------------------------------------- inspection
    @property
    def pending(self) -> int:
        """Number of buffered (not yet flushed) operations."""
        with self._lock:
            return len(self._ops)

    @property
    def next_record_id(self) -> int:
        """The id the next buffered insert will be assigned."""
        with self._lock:
            return self._next_id

    def stats(self) -> WriteBufferStats:
        """Snapshot of the cumulative counters."""
        with self._lock:
            return WriteBufferStats(
                inserts=self._inserts,
                deletes=self._deletes,
                updates=self._updates,
                flushes=self._flushes,
                flushed_operations=self._flushed_operations,
                insert_batches=self._insert_batches,
                pending=len(self._ops),
            )
