"""Closed-loop load generation against a :class:`SimilarityService`.

A *closed loop* models real clients: each of ``num_clients`` simulated
clients issues its next request only after the previous one completed,
so concurrency is exactly the client count and the measured latencies
include the queueing the service itself induces.  (An open loop — fixed
arrival rate regardless of completions — measures a different thing and
explodes under saturation; the closed loop is the standard
throughput/latency operating point.)

Each client draws its own deterministic request stream (seeded per
client) from a shared mix of searches, top-k lookups, inserts and
deletes; deletes only ever target ids the *same client* inserted, so
streams never conflict and every run is replayable.  The report carries
end-to-end throughput plus per-operation latency percentiles — the
numbers ``BENCH_serving.json`` tracks.

Everything here is pure measurement: no assertions, no index access —
only awaited service calls between two ``perf_counter`` reads.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro._errors import ConfigurationError
from repro.serving.service import SimilarityService


@dataclass(frozen=True)
class LatencySummary:
    """Percentile summary of one latency population, in milliseconds."""

    count: int
    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float

    @classmethod
    def from_seconds(cls, samples: Sequence[float]) -> "LatencySummary":
        """Summarise raw per-request wall-clock seconds."""
        if not samples:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        ms = np.asarray(samples, dtype=np.float64) * 1e3
        return cls(
            count=int(ms.size),
            mean_ms=float(ms.mean()),
            p50_ms=float(np.percentile(ms, 50)),
            p95_ms=float(np.percentile(ms, 95)),
            p99_ms=float(np.percentile(ms, 99)),
            max_ms=float(ms.max()),
        )

    def as_dict(self) -> dict:
        """JSON-ready summary (for the ``BENCH_*`` payloads)."""
        return {
            "count": self.count,
            "mean_ms": round(self.mean_ms, 4),
            "p50_ms": round(self.p50_ms, 4),
            "p95_ms": round(self.p95_ms, 4),
            "p99_ms": round(self.p99_ms, 4),
            "max_ms": round(self.max_ms, 4),
        }


@dataclass(frozen=True)
class LoadReport:
    """What one closed-loop run measured."""

    num_clients: int
    requests_per_client: int
    total_requests: int
    wall_seconds: float
    throughput_rps: float
    latency: LatencySummary
    latency_by_operation: dict
    operation_counts: dict

    def as_dict(self) -> dict:
        """JSON-ready report (for the ``BENCH_*`` payloads)."""
        return {
            "num_clients": self.num_clients,
            "requests_per_client": self.requests_per_client,
            "total_requests": self.total_requests,
            "wall_seconds": round(self.wall_seconds, 4),
            "throughput_rps": round(self.throughput_rps, 2),
            "latency": self.latency.as_dict(),
            "latency_by_operation": {
                name: summary.as_dict()
                for name, summary in sorted(self.latency_by_operation.items())
            },
            "operation_counts": dict(sorted(self.operation_counts.items())),
        }


async def run_closed_loop(
    service: SimilarityService,
    queries: Sequence[Sequence[object]],
    threshold: float,
    *,
    num_clients: int = 64,
    requests_per_client: int = 10,
    insert_pool: Sequence[Sequence[object]] = (),
    write_fraction: float = 0.0,
    delete_fraction_of_writes: float = 0.25,
    top_k_fraction: float = 0.0,
    k: int = 10,
    seed: int = 0,
) -> LoadReport:
    """Drive a closed-loop mixed workload and measure throughput/latency.

    Parameters
    ----------
    service:
        The (started) serving front to load.
    queries:
        Query pool; each search/top-k request draws one uniformly.
    threshold:
        Containment threshold shared by every search.
    num_clients:
        Concurrent simulated clients (the closed-loop concurrency).
    requests_per_client:
        Requests each client issues back-to-back.
    insert_pool:
        Record pool inserts draw from (cycled per client).  Required
        when ``write_fraction`` is positive.
    write_fraction:
        Fraction of requests that are writes; of those,
        ``delete_fraction_of_writes`` delete a record the same client
        inserted earlier (falling back to an insert when it has none).
    top_k_fraction:
        Fraction of *read* requests served as ``top_k`` instead of
        ``search``.
    k:
        The ``k`` of those top-k reads.
    seed:
        Master seed; client ``i`` derives its stream from ``(seed, i)``.
    """
    if num_clients < 1 or requests_per_client < 1:
        raise ConfigurationError("num_clients and requests_per_client must be >= 1")
    if not queries:
        raise ConfigurationError("the query pool must not be empty")
    if not 0.0 <= write_fraction <= 1.0:
        raise ConfigurationError("write_fraction must be in [0, 1]")
    if write_fraction > 0.0 and not len(insert_pool):
        raise ConfigurationError("a positive write_fraction needs an insert_pool")

    latencies: list[tuple[str, float]] = []

    async def client(client_id: int) -> None:
        rng = np.random.default_rng([seed, client_id])
        owned_ids: list[int] = []
        next_insert = client_id  # stagger the pool across clients
        for _ in range(requests_per_client):
            draw = rng.random()
            if draw < write_fraction:
                if owned_ids and rng.random() < delete_fraction_of_writes:
                    target = owned_ids.pop(int(rng.integers(len(owned_ids))))
                    start = time.perf_counter()
                    await service.delete(target)
                    latencies.append(("delete", time.perf_counter() - start))
                else:
                    record = insert_pool[next_insert % len(insert_pool)]
                    next_insert += num_clients
                    start = time.perf_counter()
                    record_id = await service.insert(list(record))
                    latencies.append(("insert", time.perf_counter() - start))
                    owned_ids.append(record_id)
            else:
                query = queries[int(rng.integers(len(queries)))]
                if rng.random() < top_k_fraction:
                    start = time.perf_counter()
                    await service.top_k(list(query), k)
                    latencies.append(("top_k", time.perf_counter() - start))
                else:
                    start = time.perf_counter()
                    await service.search(list(query), threshold)
                    latencies.append(("search", time.perf_counter() - start))

    wall_start = time.perf_counter()
    await asyncio.gather(*(client(i) for i in range(num_clients)))
    await service.drain()  # buffered writes are part of the measured work
    wall_seconds = time.perf_counter() - wall_start

    by_operation: dict[str, list[float]] = {}
    for kind, latency in latencies:
        by_operation.setdefault(kind, []).append(latency)
    total = len(latencies)
    return LoadReport(
        num_clients=num_clients,
        requests_per_client=requests_per_client,
        total_requests=total,
        wall_seconds=wall_seconds,
        throughput_rps=total / wall_seconds if wall_seconds > 0 else 0.0,
        latency=LatencySummary.from_seconds([lat for _, lat in latencies]),
        latency_by_operation={
            kind: LatencySummary.from_seconds(samples)
            for kind, samples in by_operation.items()
        },
        operation_counts={
            kind: len(samples) for kind, samples in by_operation.items()
        },
    )


def run_load(service: SimilarityService, *args, **kwargs) -> LoadReport:
    """Synchronous wrapper: ``asyncio.run`` one closed loop (benchmarks)."""
    async def runner() -> LoadReport:
        async with service:
            return await run_closed_loop(service, *args, **kwargs)

    return asyncio.run(runner())
