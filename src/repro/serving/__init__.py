"""``repro.serving`` — the asyncio serving layer over any backend.

A built index answers workloads fast (the fused engine, the sharded
fan-out) but a live service receives requests one at a time.  This
package recovers the workload shape at the front door:

:class:`SimilarityService`
    The async front: query micro-batching, write coalescing under an
    explicit visibility policy, one worker lane off the event loop, and
    ``start``/``drain``/``close`` lifecycle (``async with`` supported).
:class:`~repro.api.ServingConfig`
    Its typed configuration (micro-batch window, batch ceiling,
    visibility policy, staleness bound, buffer depth) — defined in
    :mod:`repro.api.config` with the rest of the typed configs.
:class:`MicroBatcher` / :class:`WriteCoalescer`
    The two mechanisms, separately reusable: per-key request fusion on
    the event loop, and the synchronous order-preserving write buffer
    (also driven by the dynamic-stream evaluation harness).
:func:`run_closed_loop` / :func:`run_load` / :class:`LoadReport`
    The closed-loop load generator behind ``BENCH_serving.json``.
"""

from repro.api.config import ServingConfig
from repro.serving.batcher import BatcherStats, MicroBatcher
from repro.serving.loadgen import (
    LatencySummary,
    LoadReport,
    run_closed_loop,
    run_load,
)
from repro.serving.service import ServiceStats, SimilarityService
from repro.serving.write_buffer import WriteBufferStats, WriteCoalescer

__all__ = [
    "SimilarityService",
    "ServingConfig",
    "ServiceStats",
    "MicroBatcher",
    "BatcherStats",
    "WriteCoalescer",
    "WriteBufferStats",
    "run_closed_loop",
    "run_load",
    "LoadReport",
    "LatencySummary",
]
